package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"innetcc/internal/cluster"
	"innetcc/internal/exec"
	"innetcc/internal/serve"
	"innetcc/internal/trace"
)

// clusterFlags carries the coordinator-, worker- and chaos-mode flag
// values out of main.
type clusterFlags struct {
	coordinator string        // -coordinator: listen address, coordinator mode when non-empty
	coordData   string        // -coord-data
	lease       time.Duration // -lease
	fallback    bool          // -local-fallback

	join      string // -join: coordinator URL; with -serve, runs the membership agent
	advertise string // -advertise: URL the coordinator reaches this worker at
	workerID  string // -worker-id
	slots     int    // worker capacity advertised to the coordinator (from -serve-workers)

	chaos        string // -chaos: campaign spec ("none" = fault-free campaign), chaos mode when non-empty
	chaosWorkers int    // -chaos-workers
	chaosJobs    int    // -chaos-jobs
	chaosTicks   int64  // -chaos-ticks
	chaosDir     string // -chaos-dir ("" = temp dir)
}

// runCoordinator starts the cluster coordinator and blocks until SIGTERM
// or SIGINT, then drains: dispatch loops pull a final checkpoint from
// every remote job they can reach and park all unfinished jobs queued on
// disk, so the next start re-dispatches them from their snapshots.
func runCoordinator(w io.Writer, cf clusterFlags) error {
	coord, err := cluster.New(cluster.Options{
		DataDir:       cf.coordData,
		Lease:         cf.lease,
		LocalFallback: cf.fallback,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: cf.coordinator, Handler: coord.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(w, "coordinator: listening on %s (data: %s)\n", cf.coordinator, cf.coordData)
		errCh <- hs.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		coord.Drain()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(w, "coordinator: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx)
	coord.Drain()
	fmt.Fprintln(w, "coordinator: drained (unfinished jobs parked with checkpoints)")
	return nil
}

// runWorker runs the job server exactly like -serve and, alongside it,
// the cluster membership agent: register with the coordinator, heartbeat,
// re-register after coordinator restarts. SIGTERM stops the agent (so the
// lease lapses and the coordinator reassigns) and drains the server —
// in-flight simulations checkpoint and requeue on disk, and a restarted
// worker re-registers and picks its own orphaned jobs back up.
func runWorker(w io.Writer, sf serveFlags, cf clusterFlags) error {
	tenants, err := serve.ParseTenants(sf.tenants)
	if err != nil {
		return err
	}
	slots := cf.slots
	if slots <= 0 {
		slots = 1
	}
	srv, err := serve.New(serve.Options{
		DataDir:         sf.dataDir,
		Workers:         sf.workers,
		Tenants:         tenants,
		DefaultQuota:    serve.Quota{MaxRunning: 2, MaxQueued: 64},
		CheckpointEvery: sf.ckptEvry,
	})
	if err != nil {
		return err
	}
	advertise := cf.advertise
	if advertise == "" {
		host, port, err := net.SplitHostPort(sf.addr)
		if err != nil {
			return fmt.Errorf("cannot derive -advertise from -serve %q: %w", sf.addr, err)
		}
		if host == "" {
			host = "127.0.0.1"
		}
		advertise = "http://" + net.JoinHostPort(host, port)
	}
	id := cf.workerID
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = host + sf.addr
	}
	hs := &http.Server{Addr: sf.addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	agent := &cluster.Agent{
		Coordinator: cf.join,
		ID:          id,
		Advertise:   advertise,
		Slots:       slots,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	}
	agentDone := make(chan struct{})
	go func() {
		defer close(agentDone)
		agent.Run(ctx)
	}()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(w, "worker %s: listening on %s, joining %s as %s (data: %s)\n",
			id, sf.addr, cf.join, advertise, sf.dataDir)
		errCh <- hs.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		stop()
		<-agentDone
		srv.Drain()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(w, "worker: signal received, draining")
	<-agentDone
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx)
	srv.Drain()
	fmt.Fprintln(w, "worker: drained (interrupted jobs checkpointed and requeued)")
	return nil
}

// chaosSummary is the JSON report the -chaos campaign prints.
type chaosSummary struct {
	Spec       string         `json:"spec"`
	Seed       uint64         `json:"seed"`
	Workers    int            `json:"workers"`
	Jobs       int            `json:"jobs"`
	Done       int            `json:"done"`
	Failed     int            `json:"failed"`
	Mismatches int            `json:"mismatches"`
	Ticks      int64          `json:"ticks"`
	Kills      map[string]int `json:"kills"`
	Partitions int            `json:"partitions"`
	Reassigns  int64          `json:"reassigns"`
	Resumes    int64          `json:"resumes"`
	ElapsedSec float64        `json:"elapsed_sec"`
	JobsPerSec float64        `json:"jobs_per_sec"`
}

// runChaos runs one self-contained chaos campaign in process: a
// coordinator plus -chaos-workers workers on loopback ports, a batch of
// -chaos-jobs jobs, and the seeded kill/partition schedule from the
// -chaos spec driving the harness until the batch completes. Every result
// is then re-derived by a direct in-process run and compared byte for
// byte; the JSON summary reports completion, kills, migrations and
// throughput. The spec "none" runs the same campaign fault-free (the
// clean-cluster baseline the chaos numbers are read against).
func runChaos(w io.Writer, cf clusterFlags, accesses int, seed uint64) error {
	specText := cf.chaos
	if specText == "none" {
		specText = ""
	}
	spec, err := cluster.ParseChaosSpec(specText)
	if err != nil {
		return err
	}
	if spec.End == 0 || spec.End > cf.chaosTicks {
		// Close the campaign window at the tick budget: past it the
		// harness keeps stepping (so downed workers restart) but injects
		// nothing more, and the batch runs out cleanly.
		spec.End = cf.chaosTicks
	}
	if seed == 0 {
		seed = 1
	}
	if accesses <= 0 {
		accesses = 1200
	}
	dir := cf.chaosDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "innetcc-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}

	h, err := cluster.NewHarness(cluster.HarnessOptions{
		Dir:     dir,
		Workers: cf.chaosWorkers,
		Plan:    spec.Plan(seed),
		Worker:  serve.Options{SegmentCycles: 256, CheckpointEvery: 4096},
		Logf: func(format string, args ...any) {
			if strings.HasPrefix(format, "chaos tick") {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		},
	})
	if err != nil {
		return err
	}
	defer h.Close()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	profiles := trace.Benchmarks()
	var reqs []serve.SubmitRequest
	var ids []string
	start := time.Now()
	for i := 0; i < cf.chaosJobs; i++ {
		p := profiles[i%len(profiles)]
		engine := "dir"
		if i%2 == 1 {
			engine = "tree"
		}
		req := serve.SubmitRequest{
			Tenant:    "chaos",
			Profile:   p.Name,
			Engine:    engine,
			Accesses:  accesses,
			SuiteSeed: seed + uint64(i),
		}
		rec, err := h.Coord.Submit(req)
		if err != nil {
			return fmt.Errorf("submit %s/%s: %w", p.Name, engine, err)
		}
		reqs = append(reqs, req)
		ids = append(ids, rec.ID)
	}

	allDone := func() bool {
		for _, id := range ids {
			rec, err := h.Coord.Job(id)
			if err != nil || !rec.Terminal() {
				return false
			}
		}
		return true
	}
	// Step until the batch completes: chaos injects inside the window,
	// and stepping past it still restarts downed workers. The 10x budget
	// is a hard stop against a wedged campaign.
	for h.Tick() < 10*cf.chaosTicks && !allDone() && ctx.Err() == nil {
		select {
		case <-ctx.Done():
		case <-time.After(100 * time.Millisecond):
			h.Step()
		}
	}
	if ctx.Err() != nil {
		return fmt.Errorf("chaos campaign interrupted at tick %d", h.Tick())
	}
	elapsed := time.Since(start)

	sum := chaosSummary{
		Spec:    spec.String(),
		Seed:    seed,
		Workers: cf.chaosWorkers,
		Jobs:    len(ids),
		Kills:   h.KillCounts(),
		Ticks:   h.Tick(),
	}
	for _, ev := range h.Events() {
		if ev.Kind == "partition" {
			sum.Partitions++
		}
	}
	for i, id := range ids {
		rec, err := h.Coord.Job(id)
		if err != nil {
			return err
		}
		if rec.State != serve.StateDone {
			sum.Failed++
			fmt.Fprintf(os.Stderr, "chaos: job %s (%s/%s) %s: %s\n",
				id, reqs[i].Profile, reqs[i].Engine, rec.State, rec.Error)
			continue
		}
		sum.Done++
		got, err := h.Coord.Result(id)
		if err != nil {
			return err
		}
		job, err := reqs[i].BuildJob()
		if err != nil {
			return err
		}
		want := exec.RunJob(job, exec.RunOptions{})
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if string(gb) != string(wb) {
			sum.Mismatches++
			fmt.Fprintf(os.Stderr, "chaos: job %s (%s/%s) result differs from direct run\n",
				id, reqs[i].Profile, reqs[i].Engine)
		}
	}
	st := h.Coord.Stats()
	sum.Reassigns = st.Reassigns
	sum.Resumes = st.Resumes
	sum.ElapsedSec = elapsed.Seconds()
	if elapsed > 0 {
		sum.JobsPerSec = float64(sum.Done) / elapsed.Seconds()
	}
	if err := printJSON(w, sum); err != nil {
		return err
	}
	if sum.Failed > 0 || sum.Mismatches > 0 {
		return fmt.Errorf("chaos campaign: %d failed, %d mismatched of %d jobs", sum.Failed, sum.Mismatches, sum.Jobs)
	}
	return nil
}
