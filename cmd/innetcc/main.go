// Command innetcc regenerates the tables and figures of "In-Network Cache
// Coherence" (MICRO 2006) on the repository's simulation stack: synthetic
// SPLASH-2-like traces, a cycle-driven mesh network-on-chip, the baseline
// MSI directory protocol and the in-network virtual-tree protocol.
//
// Usage:
//
//	innetcc -exp all                  # every experiment
//	innetcc -exp fig5                 # one experiment
//	innetcc -exp fig9 -accesses 300   # heavier per-node load
//	innetcc -exp mcheck               # exhaustive model checking
//
// Experiments: hopcount, fig5, table3, fig6, fig7, fig8, fig9, table4,
// fig10, fig11, ablations, storage, mcheck.
package main

import (
	"flag"
	"fmt"
	"os"

	"innetcc/internal/experiments"
	"innetcc/internal/mcheck"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, hopcount, fig5, table3, fig6, fig7, fig8, fig9, table4, fig10, fig11, ablations, storage, mcheck)")
	accesses := flag.Int("accesses", 400, "trace accesses per node (16-node experiments)")
	accesses64 := flag.Int("accesses64", 120, "trace accesses per node (64-node experiments)")
	seed := flag.Uint64("seed", 42, "experiment seed")
	flag.Parse()

	opt := experiments.Options{
		AccessesPerNode:   *accesses,
		AccessesPerNode64: *accesses64,
		Seed:              *seed,
	}
	if err := run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, "innetcc:", err)
		os.Exit(1)
	}
}

func run(exp string, opt experiments.Options) error {
	w := os.Stdout
	all := exp == "all"
	ran := false
	sep := func() { fmt.Fprintln(w) }

	if all || exp == "hopcount" {
		rs, err := experiments.HopCountStudy(opt)
		if err != nil {
			return err
		}
		experiments.PrintHopStudy(w, rs)
		sep()
		ran = true
	}
	if all || exp == "fig5" {
		rs, err := experiments.Figure5(opt)
		if err != nil {
			return err
		}
		experiments.PrintPairs(w, "Figure 5 — latency reduction, 16 nodes (Table 2 config)", rs,
			"(paper avg: reads -27.1%, writes -41.2%)")
		sep()
		ran = true
	}
	if all || exp == "table3" {
		experiments.PrintTable3(w)
		sep()
		ran = true
	}
	if all || exp == "fig6" {
		pts, err := experiments.Figure6(opt)
		if err != nil {
			return err
		}
		experiments.PrintSweep(w, "Figure 6 — tree cache size sweep (normalized to 512K entries, victim caching off)", pts, "entries")
		sep()
		ran = true
	}
	if all || exp == "fig7" {
		pts, err := experiments.Figure7(opt)
		if err != nil {
			return err
		}
		experiments.PrintSweep(w, "Figure 7 — tree cache associativity sweep (normalized to 8-way, victim caching off)", pts, "ways")
		sep()
		ran = true
	}
	if all || exp == "fig8" {
		pts, err := experiments.Figure8(opt)
		if err != nil {
			return err
		}
		experiments.PrintFigure8(w, pts)
		sep()
		ran = true
	}
	if all || exp == "fig9" {
		rs, err := experiments.Figure9(opt)
		if err != nil {
			return err
		}
		experiments.PrintPairs(w, "Figure 9 — latency reduction, 64 nodes (8x8 mesh)", rs,
			"(paper avg: reads -35%, writes -48%)")
		sep()
		ran = true
	}
	if all || exp == "table4" {
		rows, err := experiments.Table4(opt)
		if err != nil {
			return err
		}
		experiments.PrintTable4(w, rows)
		sep()
		ran = true
	}
	if all || exp == "fig10" {
		rs, err := experiments.Figure10(opt)
		if err != nil {
			return err
		}
		experiments.PrintPairs(w, "Figure 10 — in-network vs above-network tree implementation", rs,
			"(paper avg: reads -31%, writes -49.1%)")
		sep()
		ran = true
	}
	if all || exp == "fig11" {
		pts, err := experiments.Figure11(opt)
		if err != nil {
			return err
		}
		experiments.PrintFigure11(w, pts)
		sep()
		ran = true
	}
	if all || exp == "ablations" {
		rows, err := experiments.Ablations(opt)
		if err != nil {
			return err
		}
		experiments.PrintAblations(w, rows)
		sep()
		ran = true
	}
	if all || exp == "storage" {
		experiments.PrintStorage(w, experiments.StorageStudy())
		sep()
		ran = true
	}
	if all || exp == "mcheck" {
		home, ops := mcheck.DefaultProgram()
		fmt.Fprintln(w, "Section 2.4 — exhaustive model checking of the reduced protocol")
		res := mcheck.New(home, ops).Run()
		fmt.Fprintf(w, "program: 2 concurrent reads + 2 concurrent writes, home=%d\n", home)
		fmt.Fprintf(w, "%v\n", res)
		for _, v := range res.Violations {
			fmt.Fprintln(w, "VIOLATION:", v)
		}
		for _, d := range res.Deadlocks {
			fmt.Fprintln(w, "DEADLOCK:", d)
		}
		if len(res.Violations)+len(res.Deadlocks) == 0 {
			fmt.Fprintln(w, "result: coherent and sequentially consistent in every reachable state")
		}
		sep()
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
