// Command innetcc regenerates the tables and figures of "In-Network Cache
// Coherence" (MICRO 2006) on the repository's simulation stack: synthetic
// SPLASH-2-like traces, a cycle-driven mesh network-on-chip, the baseline
// MSI directory protocol and the in-network virtual-tree protocol.
//
// Simulations are dispatched through the internal/exec orchestration pool:
// -jobs sets the worker parallelism (output is byte-identical at any
// setting) and -cache enables the on-disk result cache, making repeated
// runs of unchanged experiments near-instant.
//
// Usage:
//
//	innetcc -list                     # enumerate experiments
//	innetcc -exp all                  # every experiment
//	innetcc -exp fig5                 # one experiment
//	innetcc -exp fig9 -accesses 300   # heavier per-node load
//	innetcc -exp all -jobs 8          # 8 simulation workers
//	innetcc -exp fig9 -shards 4       # split each simulation across 4 shards
//	innetcc -exp all -cache .innetcc-cache
//	innetcc -exp fig5 -cpuprofile cpu.pprof -memprofile mem.pprof
//	innetcc -exp mcheck               # exhaustive model checking
//	innetcc -exp fig5 -metrics       # + latency breakdown / NoC tables
//	innetcc -exp fig5 -metrics -metrics-out m.csv   # export (.json for JSON)
//	innetcc -exp fig5 -flight-dump   # + per-job protocol event ring
//	innetcc -exp fig5 -faults drop=2000,retries=4 -watchdog 2000000 -retries 1
//
// Server mode (-serve) runs the persistent simulation-as-a-service layer
// (internal/serve): an HTTP/JSON job API with a priority queue, per-tenant
// quotas, streaming progress, and checkpoint/restore so interrupted jobs
// resume after a restart. Client mode (-client) talks to it:
//
//	innetcc -serve :8080 -serve-data ./serve-data -tenants 'alice=2:16'
//	innetcc -client http://localhost:8080 -submit -profile fft -engine tree \
//	        -accesses 400 -tenant alice -watch yes
//	innetcc -client http://localhost:8080 -stats
//
// -metrics attaches the cycle-level observability layer (internal/metrics)
// to every simulation: per-router link utilization and queue occupancy,
// tree-cache hit/miss/eviction counters, and a per-access latency breakdown
// (queueing / serialization / traversal / controller) whose components sum
// to the reported average latency. Instrumentation is purely observational:
// simulation results are byte-identical with metrics on or off.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"innetcc/internal/experiments"
	"innetcc/internal/mcheck"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
)

// experiment is one registry entry: a runnable table/figure driver with the
// one-line description -list prints.
type experiment struct {
	name string
	desc string
	run  func(w io.Writer, opt experiments.Options) error
}

// registry lists every experiment in the order -exp all runs them.
var registry = []experiment{
	{"hopcount", "Section 1 oracle hop-count characterization (ideal in-transit reductions)", runHopCount},
	{"fig5", "Figure 5: read/write latency reduction, 16 nodes, Table 2 config", runFigure5},
	{"table3", "Table 3: tree cache access time and area grid (Cacti-style model)", runTable3},
	{"fig6", "Figure 6: tree cache capacity sweep, victim caching off", runFigure6},
	{"fig7", "Figure 7: tree cache associativity sweep, victim caching off", runFigure7},
	{"fig8", "Figure 8: L2 data cache size sweep, both protocols", runFigure8},
	{"fig9", "Figure 9: 64-node (8x8 mesh) scalability comparison", runFigure9},
	{"table4", "Table 4: deadlock detection/recovery latency share, DM tree cache", runTable4},
	{"fig10", "Figure 10: in-network vs above-network tree implementation", runFigure10},
	{"fig11", "Figure 11: router pipeline depth sweep", runFigure11},
	{"ablations", "Design-decision ablations: victim caching, proactive eviction, replication", runAblations},
	{"storage", "Section 3.6: per-node coherence storage scalability", runStorage},
	{"mcheck", "Section 2.4: exhaustive model checking of the reduced protocol", runMCheck},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (\"all\" or a name from -list)")
	list := flag.Bool("list", false, "list all experiments with descriptions and exit")
	accesses := flag.Int("accesses", 0, "trace accesses per node, 16-node experiments (0 = default)")
	accesses64 := flag.Int("accesses64", 0, "trace accesses per node, 64-node experiments (0 = default)")
	seed := flag.Uint64("seed", 0, "experiment suite seed, per-job seeds derive from it (0 = default)")
	jobs := flag.Int("jobs", 0, "simulation worker parallelism (0 = all cores); results are identical at any setting")
	cacheDir := flag.String("cache", "", "on-disk result cache directory (empty = caching off)")
	metricsOn := flag.Bool("metrics", false, "attach the cycle-level observability layer and print per-job metric tables")
	metricsOut := flag.String("metrics-out", "", "export collected metrics to this file (.json = JSON, anything else = sectioned CSV); implies -metrics")
	flightDump := flag.Bool("flight-dump", false, "print each job's flight-recorder event ring; implies -metrics")
	faults := flag.String("faults", "", "fault injection spec, e.g. \"drop=2000,timeout=20000,retries=4\" (see internal/fault; empty = off)")
	watchdog := flag.Int64("watchdog", 0, "hang watchdog window in cycles: fail a run making no progress for this long (0 = off)")
	retries := flag.Int("retries", 0, "re-run a transiently failed job (hang, retry budget) this many times with derived sub-seeds")
	shards := flag.Int("shards", 0, "worker shards per simulation (0 = auto from cores and occupancy, 1 = serial); results are identical at any setting")
	topology := flag.String("topology", "", "fabric override for every simulation: mesh:WxH, torus:WxH or ring:N (empty = each experiment's default mesh)")
	multicast := flag.Bool("multicast", false, "enable hardware multicast: directory invalidation rounds and tree teardown fan-outs ride single router-forked packets")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit (go tool pprof)")

	var lf litmusFlags
	flag.IntVar(&lf.count, "litmus", 0, "run a litmus-fuzzing campaign of this many generated conflict programs instead of an experiment")
	flag.StringVar(&lf.engine, "litmus-engine", "both", "litmus: engine(s) to replay each program on (dir|tree|both)")
	flag.StringVar(&lf.bug, "litmus-bug", "", "litmus: seeded defect mask for the tree engine, e.g. \"skip-invalidate\" (mutation testing)")
	flag.BoolVar(&lf.shrink, "litmus-shrink", true, "litmus: shrink failing specs to minimal reproducers before reporting")
	flag.StringVar(&lf.out, "litmus-out", "", "litmus: write reproducer spec files for failing runs into this directory")
	flag.StringVar(&lf.replay, "litmus-replay", "", "replay a saved litmus reproducer spec file and report the oracle outcome")

	flag.StringVar(&mcheckMesh, "mcheck-mesh", "2x2", "mcheck: fabric for the model-checking run — WxH or mesh:WxH, torus:WxH, ring:N")
	flag.IntVar(&mcheckWorkers, "mcheck-workers", 0, "mcheck: parallel BFS workers (0 = all cores, 1 = serial); counts identical at any setting")

	var sf serveFlags
	flag.StringVar(&sf.addr, "serve", "", "run the persistent job server on this listen address (e.g. :8080) instead of an experiment")
	flag.StringVar(&sf.dataDir, "serve-data", defaultServeData(), "server persistence root (job records, checkpoints, result cache)")
	flag.StringVar(&sf.tenants, "tenants", "", "per-tenant quotas, \"name=maxRunning[:maxQueued],...\" (unlisted tenants get the default quota)")
	flag.IntVar(&sf.workers, "serve-workers", 0, "concurrent simulations in server mode (0 = 1)")
	flag.Int64Var(&sf.ckptEvry, "ckpt-every", 5_000_000, "simulated cycles between job checkpoints in server mode (0 = only on drain)")
	flag.StringVar(&sf.client, "client", "", "talk to a running job server at this URL instead of running an experiment")
	flag.StringVar(&sf.tenant, "tenant", "", "client: tenant name for submissions")
	flag.IntVar(&sf.priority, "priority", 0, "client: submission priority (higher runs first)")
	flag.BoolVar(&sf.submit, "submit", false, "client: submit a job (-profile, -engine, -accesses; add -watch to stream it)")
	flag.StringVar(&sf.profile, "profile", "fft", "client: trace profile name for -submit")
	flag.StringVar(&sf.engine, "engine", "tree", "client: coherence engine for -submit (dir|tree)")
	flag.StringVar(&sf.watch, "watch", "", "client: stream a job's progress to completion (with -submit: any non-empty value watches the new job)")
	flag.StringVar(&sf.status, "status", "", "client: print one job's record")
	flag.StringVar(&sf.result, "result", "", "client: print a finished job's result")
	flag.StringVar(&sf.cancel, "cancel", "", "client: cancel a queued or running job")
	flag.BoolVar(&sf.stats, "stats", false, "client: print server queue/tenant/cache statistics")

	var cf clusterFlags
	flag.StringVar(&cf.coordinator, "coordinator", "", "run the cluster coordinator on this listen address instead of an experiment (serves the same job API, fanning work out to joined workers)")
	flag.StringVar(&cf.coordData, "coord-data", "", "coordinator persistence root (job records, migration snapshots, result cache; empty = in-memory only)")
	flag.DurationVar(&cf.lease, "lease", 0, "coordinator: worker heartbeat lease; a worker missing it has its jobs reassigned (0 = default 3s)")
	flag.BoolVar(&cf.fallback, "local-fallback", false, "coordinator: run jobs in-process while zero workers are alive instead of queueing them")
	flag.StringVar(&cf.join, "join", "", "with -serve: register this worker with the coordinator at this URL and heartbeat it")
	flag.StringVar(&cf.advertise, "advertise", "", "with -join: URL the coordinator reaches this worker at (default http://127.0.0.1<-serve addr>)")
	flag.StringVar(&cf.workerID, "worker-id", "", "with -join: stable worker identity across restarts (default hostname + listen address)")
	flag.StringVar(&cf.chaos, "chaos", "", "run an in-process cluster chaos campaign with this kill/partition spec (see internal/cluster; \"none\" = fault-free baseline) and print a JSON summary")
	flag.IntVar(&cf.chaosWorkers, "chaos-workers", 3, "chaos: worker fleet size")
	flag.IntVar(&cf.chaosJobs, "chaos-jobs", 8, "chaos: batch size; every result is verified against a direct run")
	flag.Int64Var(&cf.chaosTicks, "chaos-ticks", 50, "chaos: campaign window in ticks (100ms each); the batch may run on past it fault-free")
	flag.StringVar(&cf.chaosDir, "chaos-dir", "", "chaos: harness data root (empty = a temp dir, removed afterwards)")
	flag.Parse()

	if *list {
		printList(os.Stdout)
		return
	}
	if cf.coordinator != "" {
		if err := runCoordinator(os.Stdout, cf); err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
		return
	}
	if cf.chaos != "" {
		if err := runChaos(os.Stdout, cf, *accesses, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
		return
	}
	if sf.addr != "" {
		cf.slots = sf.workers
		var err error
		if cf.join != "" {
			err = runWorker(os.Stdout, sf, cf)
		} else {
			err = runServe(os.Stdout, sf)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
		return
	}
	if lf.replay != "" {
		if err := runLitmusReplay(os.Stdout, lf.replay); err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
		return
	}
	if lf.count > 0 {
		lf.seed = *seed
		if lf.seed == 0 {
			lf.seed = 1
		}
		lf.faults = *faults
		lf.jobs = *jobs
		if err := runLitmus(os.Stdout, lf); err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
		return
	}
	if sf.client != "" {
		if err := runClient(os.Stdout, sf, *accesses, *seed, *faults, *retries, *shards, *metricsOn, *topology, *multicast); err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	opt := experiments.Options{
		AccessesPerNode:   *accesses,
		AccessesPerNode64: *accesses64,
		Seed:              *seed,
		Jobs:              *jobs,
		Shards:            *shards,
		CacheDir:          *cacheDir,
		Metrics:           *metricsOn || *metricsOut != "" || *flightDump,
		FlightDump:        *flightDump,
		Faults:            *faults,
		Watchdog:          *watchdog,
		Retries:           *retries,
		Topology:          *topology,
		Multicast:         *multicast,
	}.WithDefaults()
	if err := opt.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "innetcc:", err)
		os.Exit(1)
	}
	if err := run(os.Stdout, *exp, opt, *metricsOut, *flightDump); err != nil {
		fmt.Fprintln(os.Stderr, "innetcc:", err)
		os.Exit(1)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "innetcc:", err)
			os.Exit(1)
		}
	}
}

func printList(w io.Writer) {
	fmt.Fprintln(w, "experiments (run with -exp <name>, or -exp all):")
	for _, e := range registry {
		fmt.Fprintf(w, "  %-10s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(w, "coherence engines:")
	for _, k := range protocol.EngineKinds() {
		fmt.Fprintf(w, "  %-10s %s\n", k, k.Describe())
	}
}

func run(w io.Writer, exp string, opt experiments.Options, metricsOut string, flightDump bool) error {
	var export []experiments.MetricsEntry
	runOne := func(e experiment) error {
		if opt.Metrics {
			opt.MetricsLog = &experiments.MetricsLog{} // fresh per experiment
		}
		if err := e.run(w, opt); err != nil {
			return err
		}
		if opt.MetricsLog != nil {
			experiments.PrintMetrics(w, opt.MetricsLog)
			if flightDump {
				experiments.PrintFlight(w, opt.MetricsLog, maxFlightPrint)
			}
			export = append(export, opt.MetricsLog.Entries...)
		}
		fmt.Fprintln(w)
		return nil
	}

	found := false
	for _, e := range registry {
		if exp == "all" || e.name == exp {
			found = true
			if err := runOne(e); err != nil {
				return err
			}
		}
	}
	if !found {
		printList(os.Stderr)
		return fmt.Errorf("unknown experiment %q (see list above, or run innetcc -list)", exp)
	}
	if metricsOut != "" {
		if err := writeMetrics(metricsOut, export); err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics: wrote %d job payload(s) to %s\n", len(export), metricsOut)
	}
	return nil
}

// maxFlightPrint caps the per-job flight tail printed by -flight-dump; the
// full retained ring is available via -metrics-out JSON.
const maxFlightPrint = 64

func writeMetrics(path string, entries []experiments.MetricsEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		if err := experiments.WriteMetricsJSON(f, entries); err != nil {
			return err
		}
	} else if err := experiments.WriteMetricsCSV(f, entries); err != nil {
		return err
	}
	return f.Close()
}

func runHopCount(w io.Writer, opt experiments.Options) error {
	rs, err := experiments.HopCountStudy(opt)
	if err != nil {
		return err
	}
	experiments.PrintHopStudy(w, rs)
	return nil
}

func runFigure5(w io.Writer, opt experiments.Options) error {
	rs, err := experiments.Figure5(opt)
	if err != nil {
		return err
	}
	experiments.PrintPairs(w, "Figure 5 — latency reduction, 16 nodes (Table 2 config)", rs,
		"(paper avg: reads -27.1%, writes -41.2%)")
	return nil
}

func runTable3(w io.Writer, _ experiments.Options) error {
	experiments.PrintTable3(w)
	return nil
}

func runFigure6(w io.Writer, opt experiments.Options) error {
	pts, err := experiments.Figure6(opt)
	if err != nil {
		return err
	}
	experiments.PrintSweep(w, "Figure 6 — tree cache size sweep (normalized to 512K entries, victim caching off)", pts, "entries")
	return nil
}

func runFigure7(w io.Writer, opt experiments.Options) error {
	pts, err := experiments.Figure7(opt)
	if err != nil {
		return err
	}
	experiments.PrintSweep(w, "Figure 7 — tree cache associativity sweep (normalized to 8-way, victim caching off)", pts, "ways")
	return nil
}

func runFigure8(w io.Writer, opt experiments.Options) error {
	pts, err := experiments.Figure8(opt)
	if err != nil {
		return err
	}
	experiments.PrintFigure8(w, pts)
	return nil
}

func runFigure9(w io.Writer, opt experiments.Options) error {
	rs, err := experiments.Figure9(opt)
	if err != nil {
		return err
	}
	experiments.PrintPairs(w, "Figure 9 — latency reduction, 64 nodes (8x8 mesh)", rs,
		"(paper avg: reads -35%, writes -48%)")
	return nil
}

func runTable4(w io.Writer, opt experiments.Options) error {
	rows, err := experiments.Table4(opt)
	if err != nil {
		return err
	}
	experiments.PrintTable4(w, rows)
	return nil
}

func runFigure10(w io.Writer, opt experiments.Options) error {
	rs, err := experiments.Figure10(opt)
	if err != nil {
		return err
	}
	experiments.PrintPairs(w, "Figure 10 — in-network vs above-network tree implementation", rs,
		"(paper avg: reads -31%, writes -49.1%)")
	return nil
}

func runFigure11(w io.Writer, opt experiments.Options) error {
	pts, err := experiments.Figure11(opt)
	if err != nil {
		return err
	}
	experiments.PrintFigure11(w, pts)
	return nil
}

func runAblations(w io.Writer, opt experiments.Options) error {
	rows, err := experiments.Ablations(opt)
	if err != nil {
		return err
	}
	experiments.PrintAblations(w, rows)
	return nil
}

func runStorage(w io.Writer, _ experiments.Options) error {
	experiments.PrintStorage(w, experiments.StorageStudy())
	return nil
}

// mcheckMesh and mcheckWorkers are the -mcheck-mesh / -mcheck-workers flag
// values (registered in main, read by runMCheck through the registry).
var (
	mcheckMesh    string
	mcheckWorkers int
)

func runMCheck(w io.Writer, _ experiments.Options) error {
	ts, err := network.ParseTopoSpec(mcheckMesh)
	if err != nil {
		return fmt.Errorf("mcheck: bad -mcheck-mesh %q (want WxH, mesh:WxH, torus:WxH or ring:N)", mcheckMesh)
	}
	topo := ts.Build()
	if topo.Nodes() < 4 {
		return fmt.Errorf("mcheck: fabric %s too small for the default program (needs >= 4 nodes)", ts)
	}
	workers := mcheckWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	home, ops := mcheck.DefaultProgram()
	fmt.Fprintln(w, "Section 2.4 — exhaustive model checking of the reduced protocol")
	c := mcheck.NewTopology(topo, home, ops)
	c.Workers = workers
	res := c.Run()
	fmt.Fprintf(w, "program: 2 concurrent reads + 2 concurrent writes, home=%d, fabric %s, %d worker(s)\n",
		home, topo.Spec(), workers)
	fmt.Fprintf(w, "%v\n", res)
	for _, v := range res.Violations {
		fmt.Fprintln(w, "VIOLATION:", v)
	}
	for _, d := range res.Deadlocks {
		fmt.Fprintln(w, "DEADLOCK:", d)
	}
	if len(res.Violations)+len(res.Deadlocks) == 0 {
		fmt.Fprintln(w, "result: coherent and sequentially consistent in every reachable state")
	}
	return nil
}
