package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"innetcc/internal/exec"
	"innetcc/internal/litmus"
	"innetcc/internal/protocol"
)

// litmusFlags carries the -litmus campaign / -litmus-replay options.
type litmusFlags struct {
	count  int    // campaign size (generated programs); 0 = mode off
	seed   uint64 // base seed; program i runs with seed base+i
	engine string // "dir", "tree", or "both"
	bug    string // seeded defect mask (tree engine only)
	faults string // fault spec string applied to every run
	shrink bool   // minimize failing specs before reporting
	out    string // directory for reproducer spec files ("" = don't write)
	replay string // spec file to replay instead of running a campaign
	jobs   int    // worker parallelism
}

// runLitmusReplay loads a saved reproducer and replays it, printing what
// the oracles say now. Reproducing a failure is the expected outcome, so
// failures are reported, not returned as an error.
func runLitmusReplay(w io.Writer, path string) error {
	rs, err := litmus.Load(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replaying %s\n  %s\n", path, rs)
	fails, err := litmus.Run(rs)
	if err != nil {
		return err
	}
	if len(fails) == 0 {
		fmt.Fprintln(w, "result: all oracles passed (failure did not reproduce)")
		return nil
	}
	for _, f := range fails {
		fmt.Fprintln(w, "reproduced:", f)
	}
	return nil
}

// runLitmus runs a campaign of lf.count generated conflict programs through
// the full simulator and its oracle battery. Any oracle failure makes the
// command exit non-zero; -litmus-shrink minimizes each failing spec first
// and -litmus-out saves the reproducers for later -litmus-replay.
func runLitmus(w io.Writer, lf litmusFlags) error {
	var kinds []protocol.EngineKind
	if lf.engine == "both" {
		kinds = protocol.EngineKinds()
	} else {
		k, err := protocol.ParseEngineKind(lf.engine)
		if err != nil {
			return err
		}
		kinds = []protocol.EngineKind{k}
	}
	var specs []litmus.RunSpec
	for i := 0; i < lf.count; i++ {
		seed := lf.seed + uint64(i)
		prog := litmus.Generate(seed)
		for _, k := range kinds {
			specs = append(specs, litmus.RunSpec{
				Engine: k, Seed: seed, Bug: lf.bug, Faults: lf.faults, Program: prog,
			})
		}
	}
	fmt.Fprintf(w, "litmus campaign: %d programs x %d engine(s), base seed %d", lf.count, len(kinds), lf.seed)
	if lf.bug != "" {
		fmt.Fprintf(w, ", bug %s", lf.bug)
	}
	if lf.faults != "" {
		fmt.Fprintf(w, ", faults %s", lf.faults)
	}
	fmt.Fprintln(w)

	results := exec.RunLitmusBatch(context.Background(), lf.jobs, specs)
	failed := 0
	for _, r := range results {
		if !r.Failed() {
			continue
		}
		failed++
		if r.Err != "" {
			fmt.Fprintf(w, "FAIL %s\n  error: %s\n", r.Spec, r.Err)
			continue
		}
		rs := r.Spec
		fails := r.Failures
		if lf.shrink {
			rs = litmus.Shrink(rs)
			if shrunk, err := litmus.Run(rs); err == nil && len(shrunk) > 0 {
				fails = shrunk
			}
		}
		fmt.Fprintf(w, "FAIL %s\n", rs)
		for _, f := range fails {
			fmt.Fprintln(w, "  ", f)
		}
		if lf.out != "" {
			if err := os.MkdirAll(lf.out, 0o755); err != nil {
				return err
			}
			path := filepath.Join(lf.out, fmt.Sprintf("litmus-%s-seed%d.json", rs.Engine, rs.Seed))
			if err := rs.Save(path); err != nil {
				return err
			}
			fmt.Fprintln(w, "   reproducer:", path)
		}
	}
	fmt.Fprintf(w, "litmus: %d/%d runs passed\n", len(results)-failed, len(results))
	if failed > 0 {
		return fmt.Errorf("litmus: %d of %d runs failed", failed, len(results))
	}
	return nil
}
