package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"innetcc/internal/serve"
)

// serveFlags carries the server- and client-mode flag values out of main.
type serveFlags struct {
	addr     string // -serve: listen address, server mode when non-empty
	dataDir  string // -serve-data
	tenants  string // -tenants quota spec
	workers  int    // -serve-workers
	ckptEvry int64  // -ckpt-every

	client   string // -client: server URL, client mode when non-empty
	tenant   string // -tenant
	priority int    // -priority
	submit   bool   // -submit
	profile  string // -profile
	engine   string // -engine
	watch    string // -watch <id> (or "" plus -submit to watch the new job)
	status   string // -status <id>
	result   string // -result <id>
	cancel   string // -cancel <id>
	stats    bool   // -stats
}

// runServe starts the persistent job server and blocks until SIGTERM or
// SIGINT, then drains: running simulations stop at their next segment
// boundary with a checkpoint written and are requeued on disk, so the next
// start resumes them.
func runServe(w io.Writer, sf serveFlags) error {
	tenants, err := serve.ParseTenants(sf.tenants)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Options{
		DataDir:         sf.dataDir,
		Workers:         sf.workers,
		Tenants:         tenants,
		DefaultQuota:    serve.Quota{MaxRunning: 2, MaxQueued: 64},
		CheckpointEvery: sf.ckptEvry,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: sf.addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(w, "serve: listening on %s (data: %s)\n", sf.addr, sf.dataDir)
		errCh <- hs.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		srv.Drain()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(w, "serve: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx)
	srv.Drain()
	fmt.Fprintln(w, "serve: drained (interrupted jobs checkpointed and requeued)")
	return nil
}

// runClient performs one client operation against a running server.
func runClient(w io.Writer, sf serveFlags, accesses int, seed uint64, faults string, retries, shards int, metrics bool, topology string, multicast bool) error {
	c := &serve.Client{Base: sf.client, Tenant: sf.tenant}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	switch {
	case sf.submit:
		if accesses <= 0 {
			accesses = 200
		}
		rec, err := c.Submit(ctx, serve.SubmitRequest{
			Tenant:    sf.tenant,
			Priority:  sf.priority,
			Profile:   sf.profile,
			Engine:    sf.engine,
			Accesses:  accesses,
			SuiteSeed: seed,
			Faults:    faults,
			Retries:   retries,
			Shards:    shards,
			Metrics:   metrics,
			Topology:  topology,
			Multicast: multicast,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "submitted %s (%s, tenant %s, priority %d)\n", rec.ID, rec.Hash[:12], rec.Tenant, rec.Priority)
		if sf.watch == "" {
			return nil
		}
		return watchJob(ctx, w, c, rec.ID)
	case sf.watch != "":
		return watchJob(ctx, w, c, sf.watch)
	case sf.status != "":
		rec, err := c.Job(ctx, sf.status)
		if err != nil {
			return err
		}
		return printJSON(w, rec)
	case sf.result != "":
		res, err := c.Result(ctx, sf.result)
		if err != nil {
			return err
		}
		return printJSON(w, res)
	case sf.cancel != "":
		if err := c.Cancel(ctx, sf.cancel); err != nil {
			return err
		}
		fmt.Fprintf(w, "canceling %s\n", sf.cancel)
		return nil
	case sf.stats:
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		return printJSON(w, st)
	default:
		if err := c.Health(ctx); err != nil {
			return err
		}
		fmt.Fprintln(w, "server is healthy")
		return nil
	}
}

// watchJob follows the job's progress stream to a terminal state, then
// prints the result.
func watchJob(ctx context.Context, w io.Writer, c *serve.Client, id string) error {
	final, err := c.Watch(ctx, id, func(ev serve.Event) {
		switch {
		case ev.Type == "progress" && ev.Progress != nil:
			fmt.Fprintf(w, "  cycle %d (attempt %d)\n", ev.Progress.Cycle, ev.Progress.Attempt+1)
		case ev.Type == "state" && ev.Record != nil:
			fmt.Fprintf(w, "  state: %s\n", ev.Record.State)
		}
	})
	if err != nil {
		return err
	}
	if !final.Terminal() {
		return fmt.Errorf("stream ended with job %s still %s (server draining?)", id, final.State)
	}
	if final.State != serve.StateDone {
		return errors.New("job " + id + " " + final.State + ": " + final.Error)
	}
	res, err := c.Result(ctx, id)
	if err != nil {
		return err
	}
	return printJSON(w, res)
}

func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// defaultServeData is the server's persistence root when -serve-data is
// not given.
func defaultServeData() string {
	if d, err := os.Getwd(); err == nil {
		return d + "/.innetcc-serve"
	}
	return ".innetcc-serve"
}
