// Package innetcc_bench contains one testing.B benchmark per table and
// figure of the paper's evaluation, regenerating the corresponding rows or
// series each iteration and reporting the headline metric with
// b.ReportMetric. Run everything with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use reduced trace lengths so the full set completes in
// minutes; the innetcc command runs the same experiments at full scale.
// Every experiment dispatches its simulations through the internal/exec
// worker pool (all cores); BenchmarkFigure5Serial pins one worker so the
// pool's speedup is measurable as the ratio of the two Figure5 timings.
package innetcc_bench

import (
	"fmt"
	"testing"

	"innetcc/internal/cacti"
	"innetcc/internal/experiments"
	"innetcc/internal/mcheck"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"

	// Engine builder registration for the kernel benchmarks below.
	_ "innetcc/internal/directory"
	_ "innetcc/internal/treecc"
)

func benchOpts() experiments.Options {
	// Reduced trace lengths so the full set completes in minutes; Jobs 0 =
	// all cores (the per-job seed derivation keeps results identical to
	// any other parallelism level). WithDefaults fills the suite seed.
	return experiments.Options{AccessesPerNode: 200, AccessesPerNode64: 60}.WithDefaults()
}

// kernelMeshRun executes one 64-node (8x8 mesh) Figure-9-style simulation —
// the low-injection regime where most routers idle most cycles — under the
// active-set kernel or the exhaustive always-tick kernel. It is the
// workload behind the BENCH_kernel.json baseline: the ratio of the two
// timings is the active-set speedup.
func kernelMeshRun(b *testing.B, alwaysTick bool) {
	p, err := trace.ProfileByName("bar")
	if err != nil {
		b.Fatal(err)
	}
	p.Think = 200 // long think time = low injection rate, the idle-heavy regime
	cfg := protocol.DefaultConfig()
	cfg.Topology = network.MeshSpec(8, 8)
	cfg.Seed = 42
	tr := trace.Generate(p, cfg.Nodes(), 120, cfg.Seed)
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		m, err := protocol.Build(protocol.Spec{
			Config: cfg, Trace: tr, Think: p.Think,
			Engine: protocol.KindTree, AlwaysTick: alwaysTick,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(200_000_000); err != nil {
			b.Fatal(err)
		}
		cycles = m.Kernel.Now()
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkKernelIdleMesh is the active-set kernel baseline: 64 nodes at
// low injection, idle components parked and skipped. CI's bench-smoke step
// records it (with the always-tick control below) in BENCH_kernel.json.
func BenchmarkKernelIdleMesh(b *testing.B) { kernelMeshRun(b, false) }

// BenchmarkKernelIdleMeshAlwaysTick is the control: the identical
// simulation with parking disabled, every ticker ticked every cycle. Its
// time divided by BenchmarkKernelIdleMesh's is the measured speedup.
func BenchmarkKernelIdleMeshAlwaysTick(b *testing.B) { kernelMeshRun(b, true) }

// BenchmarkParallelMesh measures the sharded tick engine on a single large
// simulation: a 16x16 mesh (256 nodes) under the tree protocol, split
// across 1, 2, 4 and 8 worker shards plus automatic selection (shards=0:
// sim.AutoShards + the occupancy-driven width tuner). Results are
// byte-identical at every shard count, so the timing ratios are pure engine
// speedup. Alongside ns/op, each variant reports the engine's own
// accounting — mean active routers per busy cycle (occ-tickers) and total
// coordinator barrier-wait time (barrier-wait-ns) — so a timing regression
// is attributable to load imbalance or synchronization rather than guessed
// at. CI's bench-smoke step records the series in BENCH_parallel.json
// together with the host's CPU count: on a single-core host the parallel
// variants can only show scheduling overhead, while multicore hosts see the
// speedup.
func BenchmarkParallelMesh(b *testing.B) {
	p, err := trace.ProfileByName("bar")
	if err != nil {
		b.Fatal(err)
	}
	cfg := protocol.DefaultConfig()
	cfg.Topology = network.MeshSpec(16, 16)
	cfg.Seed = 42
	tr := trace.Generate(p, cfg.Nodes(), 40, cfg.Seed)
	for _, shards := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "shards=auto"
		}
		b.Run(name, func(b *testing.B) {
			var cycles, occ, barrier float64
			for i := 0; i < b.N; i++ {
				// Construction (dominated by allocating and zeroing 256
				// nodes' caches) is excluded from the timed region: ns/op
				// is simulation only, so shard-count ratios measure the
				// tick engine rather than being diluted by setup cost.
				b.StopTimer()
				m, err := protocol.Build(protocol.Spec{
					Config: cfg, Trace: tr, Think: p.Think,
					Engine: protocol.KindTree, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := m.Run(200_000_000); err != nil {
					b.Fatal(err)
				}
				cycles = float64(m.Kernel.Now())
				st := m.Kernel.ShardStats()
				occ, barrier = 0, float64(st.BarrierWaitNs)
				if st.BusyCycles > 0 {
					occ = float64(st.ActiveSum) / float64(st.BusyCycles)
				}
			}
			b.ReportMetric(cycles, "sim-cycles")
			b.ReportMetric(occ, "occ-tickers")
			b.ReportMetric(barrier, "barrier-wait-ns")
		})
	}
}

// BenchmarkTopologyMulticast measures hardware multicast on the directory
// protocol: the same wsp trace (the heaviest-sharing profile) on an 8x8
// torus, invalidation rounds sent as one unicast packet per sharer versus
// one router-forked multicast packet per round. CI's bench-smoke step
// records both inv-packets metrics in BENCH_topology.json; their ratio is
// the fabric's invalidation-traffic saving.
func BenchmarkTopologyMulticast(b *testing.B) {
	p, err := trace.ProfileByName("wsp")
	if err != nil {
		b.Fatal(err)
	}
	cfg := protocol.DefaultConfig()
	cfg.Topology = network.TorusSpec(8, 8)
	cfg.Seed = 42
	tr := trace.Generate(p, cfg.Nodes(), 150, cfg.Seed)
	for _, multicast := range []bool{false, true} {
		name := "Unicast"
		if multicast {
			name = "Multicast"
		}
		b.Run(name, func(b *testing.B) {
			var pkts int64
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Multicast = multicast
				m, err := protocol.Build(protocol.Spec{
					Config: c, Trace: tr, Think: p.Think,
					Engine: protocol.KindDirectory,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Run(200_000_000); err != nil {
					b.Fatal(err)
				}
				pkts = m.Counters.Get("dir.inv_packets")
			}
			b.ReportMetric(float64(pkts), "inv-packets")
		})
	}
}

// BenchmarkHopCountStudy regenerates the Section 1 oracle hop-count
// characterization (paper: reads -19.7%, writes -17.3% on average).
func BenchmarkHopCountStudy(b *testing.B) {
	var lastR, lastW float64
	for i := 0; i < b.N; i++ {
		rs, err := experiments.HopCountStudy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		lastR, lastW = 0, 0
		for _, r := range rs {
			lastR += r.ReadPct
			lastW += r.WritePct
		}
		lastR /= float64(len(rs))
		lastW /= float64(len(rs))
	}
	b.ReportMetric(lastR, "read-hop-red-%")
	b.ReportMetric(lastW, "write-hop-red-%")
}

// BenchmarkFigure5 regenerates the 16-node latency comparison (paper:
// reads -27.1%, writes -41.2% on average).
func BenchmarkFigure5(b *testing.B) {
	var avg experiments.PairResult
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		avg = rs[len(rs)-1]
	}
	b.ReportMetric(avg.ReadReduction(), "read-red-%")
	b.ReportMetric(avg.WriteReduction(), "write-red-%")
}

// BenchmarkFigure5Serial runs Figure 5 with a single pool worker; compare
// against BenchmarkFigure5 (all cores) to measure the orchestration
// speedup. Both produce identical results.
func BenchmarkFigure5Serial(b *testing.B) {
	opt := benchOpts()
	opt.Jobs = 1
	var avg experiments.PairResult
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Figure5(opt)
		if err != nil {
			b.Fatal(err)
		}
		avg = rs[len(rs)-1]
	}
	b.ReportMetric(avg.ReadReduction(), "read-red-%")
	b.ReportMetric(avg.WriteReduction(), "write-red-%")
}

// BenchmarkTable3 regenerates the tree cache access-time/area grid from the
// Cacti-style analytical model.
func BenchmarkTable3(b *testing.B) {
	var nominal cacti.Result
	for i := 0; i < b.N; i++ {
		grid := cacti.Table3()
		nominal = grid[2][3] // 4-way, 4K entries
	}
	b.ReportMetric(float64(nominal.AccessCycles), "nominal-cycles")
	b.ReportMetric(nominal.AreaMM2, "nominal-mm2")
}

// BenchmarkFigure6 regenerates the tree-cache size sweep (paper: read
// latency rises steadily as capacity shrinks; writes insensitive).
func BenchmarkFigure6(b *testing.B) {
	var smallest float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for _, p := range pts {
			if p.Value == experiments.Figure6Sizes[len(experiments.Figure6Sizes)-1] {
				sum += p.Read
				n++
			}
		}
		smallest = sum / float64(n)
	}
	b.ReportMetric(smallest, "512ent-norm-read")
}

// BenchmarkFigure7 regenerates the associativity sweep (paper: best at
// 4-way; worse when direct-mapped and at 8-way).
func BenchmarkFigure7(b *testing.B) {
	var dm float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for _, p := range pts {
			if p.Value == 1 {
				sum += p.Read
				n++
			}
		}
		dm = sum / float64(n)
	}
	b.ReportMetric(dm, "dm-norm-read")
}

// BenchmarkFigure8 regenerates the L2 size sweep (paper: gains shrink with
// smaller L2; writes insensitive).
func BenchmarkFigure8(b *testing.B) {
	var small float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for _, p := range pts {
			if p.L2 == experiments.Figure8L2[len(experiments.Figure8L2)-1] {
				sum += p.ReadRed
				n++
			}
		}
		small = sum / float64(n)
	}
	b.ReportMetric(small, "128KB-read-red-%")
}

// BenchmarkFigure9 regenerates the 64-node scalability comparison (paper:
// reads -35%, writes -48% on average).
func BenchmarkFigure9(b *testing.B) {
	var avg experiments.PairResult
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Figure9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		avg = rs[len(rs)-1]
	}
	b.ReportMetric(avg.ReadReduction(), "read-red-%")
	b.ReportMetric(avg.WriteReduction(), "write-red-%")
}

// BenchmarkTable4 regenerates the deadlock-recovery cost measurement
// (paper: ~0.2% of latency with direct-mapped tree caches).
func BenchmarkTable4(b *testing.B) {
	var avgR, avgW float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		avgR, avgW = 0, 0
		for _, r := range rows {
			avgR += r.ReadPct
			avgW += r.WritePct
		}
		avgR /= float64(len(rows))
		avgW /= float64(len(rows))
	}
	b.ReportMetric(avgR, "read-deadlock-%")
	b.ReportMetric(avgW, "write-deadlock-%")
}

// BenchmarkFigure10 regenerates the in-network versus above-network
// comparison (paper: reads -31%, writes -49.1% on average).
func BenchmarkFigure10(b *testing.B) {
	var avg experiments.PairResult
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Figure10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		avg = rs[len(rs)-1]
	}
	b.ReportMetric(avg.ReadReduction(), "read-red-%")
	b.ReportMetric(avg.WriteReduction(), "write-red-%")
}

// BenchmarkFigure11 regenerates the router pipeline depth sweep (paper:
// the advantage shrinks monotonically as pipelines shorten).
func BenchmarkFigure11(b *testing.B) {
	avg := map[int]float64{}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		cnt := map[int]int{}
		for k := range avg {
			delete(avg, k)
		}
		for _, p := range pts {
			avg[p.Pipeline] += p.Red
			cnt[p.Pipeline]++
		}
		for k := range avg {
			avg[k] /= float64(cnt[k])
		}
	}
	b.ReportMetric(avg[5], "depth5-red-%")
	b.ReportMetric(avg[1], "depth1-red-%")
}

// BenchmarkStorage regenerates the Section 3.6 storage comparison (paper:
// +56% at 16 nodes, -58% at 64 nodes).
func BenchmarkStorage(b *testing.B) {
	var rows []experiments.StorageRow
	for i := 0; i < b.N; i++ {
		rows = experiments.StorageStudy()
	}
	b.ReportMetric(rows[0].TreeOverhead, "16node-overhead-%")
	b.ReportMetric(rows[1].TreeOverhead, "64node-overhead-%")
}

// BenchmarkModelCheck runs the Section 2.4 exhaustive verification of the
// reduced protocol (the paper's Murφ run).
func BenchmarkModelCheck(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		home, ops := mcheck.DefaultProgram()
		res := mcheck.New(home, ops).Run()
		if len(res.Violations)+len(res.Deadlocks) > 0 {
			b.Fatalf("verification failed: %v", res)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkAblations quantifies the design-decision ablations (victim
// caching, proactive eviction, Section 4 replication) under tree-cache
// pressure.
func BenchmarkAblations(b *testing.B) {
	var victim float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		victim = rows[0].ReadDelta
	}
	b.ReportMetric(victim, "victim-off-read-delta-%")
}
