// Designspace: explore the virtual tree cache organization the way the
// paper's Section 3.2 does — sweep capacity and associativity, weigh the
// performance against the access-time and area costs from the Cacti-style
// model, and arrive at the paper's chosen 4K-entry 4-way point.
//
// The sweep is dispatched as one batch on the internal/exec worker pool:
// all six configurations simulate concurrently, and the printed table is
// identical at any parallelism because results come back in submission
// order with seeds derived from the suite seed, not from scheduling.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"innetcc/internal/cacti"
	"innetcc/internal/exec"
	"innetcc/internal/experiments"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

func main() {
	profile, err := trace.ProfileByName("bar")
	if err != nil {
		log.Fatal(err)
	}
	grid := []struct{ entries, ways int }{
		{1024, 4}, {2048, 4}, {4096, 1}, {4096, 4}, {4096, 8}, {8192, 4},
	}
	opt := experiments.Options{Seed: 3}.WithDefaults()
	var jobs []exec.Job
	for _, g := range grid {
		cfg := protocol.DefaultConfig()
		cfg.TreeEntries = g.entries
		cfg.TreeWays = g.ways
		cfg.VictimCaching = false // isolate the underlying protocol, as in Figs 6/7
		jobs = append(jobs, exec.Job{
			Key:       fmt.Sprintf("designspace/%d/%d", g.entries, g.ways),
			Engine:    protocol.KindTree,
			Config:    cfg,
			Profile:   profile,
			Accesses:  opt.AccessesPerNode,
			SuiteSeed: opt.Seed,
		})
	}
	results := (&exec.Pool{}).Run(jobs) // zero value: all cores

	fmt.Println("tree cache design space (benchmark: barnes, victim caching off)")
	fmt.Printf("%-10s %-6s %12s %12s %10s\n", "entries", "ways", "avg-read", "access", "area")
	for i, g := range grid {
		r := results[i]
		if r.Failed() {
			fmt.Printf("%-10d %-6d FAILED: %s\n", g.entries, g.ways, r.Err)
			continue
		}
		hw := cacti.Evaluate(cacti.TreeCacheConfig(g.entries, g.ways))
		fmt.Printf("%-10d %-6d %9.1f cy %9d cy %7.2f mm²\n",
			g.entries, g.ways, r.Read.Mean(), hw.AccessCycles, hw.AreaMM2)
	}
	fmt.Println("\nThe paper selects 4K entries, 4-way: 2-cycle access (one extra")
	fmt.Println("pipeline stage at 500 MHz) at ~0.5 mm² — negligible next to a")
	fmt.Println("2x2 mm RAW-style tile — while larger or more associative caches")
	fmt.Println("stop paying for themselves (8-way even hurts: bigger sets give")
	fmt.Println("passing writes more victim trees to proactively evict).")
}
