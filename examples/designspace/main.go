// Designspace: explore the virtual tree cache organization the way the
// paper's Section 3.2 does — sweep capacity and associativity, weigh the
// performance against the access-time and area costs from the Cacti-style
// model, and arrive at the paper's chosen 4K-entry 4-way point.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"innetcc/internal/cacti"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
	"innetcc/internal/treecc"
)

func readLatency(entries, ways int) float64 {
	p, err := trace.ProfileByName("bar")
	if err != nil {
		log.Fatal(err)
	}
	cfg := protocol.DefaultConfig()
	cfg.TreeEntries = entries
	cfg.TreeWays = ways
	cfg.VictimCaching = false // isolate the underlying protocol, as in Figs 6/7
	tr := trace.Generate(p, cfg.Nodes(), 400, 3)
	m, err := protocol.NewMachine(cfg, tr, p.Think)
	if err != nil {
		log.Fatal(err)
	}
	treecc.New(m)
	if err := m.Run(100_000_000); err != nil {
		log.Fatal(err)
	}
	return m.Lat.Read.Mean()
}

func main() {
	fmt.Println("tree cache design space (benchmark: barnes, victim caching off)")
	fmt.Printf("%-10s %-6s %12s %12s %10s\n", "entries", "ways", "avg-read", "access", "area")
	for _, cfg := range []struct{ entries, ways int }{
		{1024, 4}, {2048, 4}, {4096, 1}, {4096, 4}, {4096, 8}, {8192, 4},
	} {
		lat := readLatency(cfg.entries, cfg.ways)
		hw := cacti.Evaluate(cacti.TreeCacheConfig(cfg.entries, cfg.ways))
		fmt.Printf("%-10d %-6d %9.1f cy %9d cy %7.2f mm²\n",
			cfg.entries, cfg.ways, lat, hw.AccessCycles, hw.AreaMM2)
	}
	fmt.Println("\nThe paper selects 4K entries, 4-way: 2-cycle access (one extra")
	fmt.Println("pipeline stage at 500 MHz) at ~0.5 mm² — negligible next to a")
	fmt.Println("2x2 mm RAW-style tile — while larger or more associative caches")
	fmt.Println("stop paying for themselves (8-way even hurts: bigger sets give")
	fmt.Println("passing writes more victim trees to proactively evict).")
}
