// Verification: the paper verifies in-network coherence two ways
// (Section 2.4) — exhaustive model checking of a reduced protocol model in
// Murφ, and runtime checks in every simulation. This example runs both on
// this repository's implementations: the explicit-state model checker over
// several concurrent programs, then an adversarial simulation (tiny
// direct-mapped tree caches, heavy write contention) with the runtime
// verifier active.
//
//	go run ./examples/verification
package main

import (
	"fmt"
	"log"

	"innetcc/internal/mcheck"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"

	// Registers the tree engine builder with protocol.Build.
	_ "innetcc/internal/treecc"
)

func main() {
	fmt.Println("1. exhaustive model checking (reduced protocol, 2x2 mesh)")
	programs := []struct {
		name string
		home int
		ops  []mcheck.Op
	}{
		{"read + write race", 0, []mcheck.Op{{Node: 1}, {Node: 2, Write: true}}},
		{"two concurrent writes", 0, []mcheck.Op{{Node: 1, Write: true}, {Node: 2, Write: true}}},
		{"home node racing a remote writer", 0, []mcheck.Op{{Node: 0, Write: true}, {Node: 3, Write: true}}},
	}
	for _, prog := range programs {
		res := mcheck.New(prog.home, prog.ops).Run()
		status := "OK"
		if len(res.Violations)+len(res.Deadlocks) > 0 {
			status = "FAILED"
		}
		fmt.Printf("   %-34s %8d states %s\n", prog.name, res.States, status)
		for _, v := range res.Violations {
			fmt.Println("   violation:", v)
		}
	}
	home, ops := mcheck.DefaultProgram()
	res := mcheck.New(home, ops).Run()
	fmt.Printf("   %-34s %8d states (paper's Murφ bound: ~100k)\n",
		"2 reads + 2 writes (paper's bound)", res.States)

	fmt.Println("\n2. runtime verification under adversarial pressure")
	cfg := protocol.DefaultConfig()
	cfg.TreeEntries, cfg.TreeWays = 32, 1 // brutal conflict pressure
	p, err := trace.ProfileByName("wsp")
	if err != nil {
		log.Fatal(err)
	}
	tr := trace.Generate(p, 16, 400, 99)
	m, err := protocol.Build(protocol.Spec{
		Config: cfg, Trace: tr, Think: 2, Engine: protocol.KindTree,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Machine.Run fails on any coherence or sequential-consistency
	// violation recorded by the verifier.
	if err := m.Run(200_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d reads + %d writes completed, 0 violations\n", m.Lat.Read.N, m.Lat.Write.N)
	fmt.Printf("   conflict evictions: %d, deadlock recoveries: %d (timeout+backoff)\n",
		m.Counters.Get("tree.conflict_evictions"),
		m.Counters.Get("tree.deadlock_aborts"))
	r, w := m.Lat.DeadlockShare()
	fmt.Printf("   deadlock recovery share of latency: reads %.2f%%, writes %.2f%%\n", r, w)
	fmt.Println("   (this stress config is far harsher than Table 4's 4K direct-mapped")
	fmt.Println("   setting, where recovery costs ~0.2% — run `innetcc -exp table4`)")
}
