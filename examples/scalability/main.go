// Scalability: the paper's central scalability claim (Section 3.4) is that
// in-transit optimization keeps paying off as the chip grows. This example
// runs the same benchmarks on a 4x4 and an 8x8 mesh and reports how the
// write-latency advantage of in-network coherence evolves, along with the
// coherence storage comparison of Section 3.6 (full-map directory bits grow
// with the node count; virtual tree bits do not).
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	"innetcc/internal/directory"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
	"innetcc/internal/treecc"
)

func run(cfg protocol.Config, p trace.Profile, accesses int) (baseW, treeW float64) {
	tr := trace.Generate(p, cfg.Nodes(), accesses, 7)
	base, err := protocol.NewMachine(cfg, tr, p.Think)
	if err != nil {
		log.Fatal(err)
	}
	directory.New(base)
	if err := base.Run(100_000_000); err != nil {
		log.Fatal(err)
	}
	tree, err := protocol.NewMachine(cfg, tr, p.Think)
	if err != nil {
		log.Fatal(err)
	}
	treecc.New(tree)
	if err := tree.Run(100_000_000); err != nil {
		log.Fatal(err)
	}
	return base.Lat.Write.Mean(), tree.Lat.Write.Mean()
}

func main() {
	benches := []string{"fft", "bar", "wsp", "ocn"}
	fmt.Printf("%-6s %16s %16s\n", "bench", "4x4 write-red", "8x8 write-red")
	for _, name := range benches {
		p, err := trace.ProfileByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg16 := protocol.DefaultConfig()
		b16, t16 := run(cfg16, p, 400)
		cfg64 := protocol.DefaultConfig()
		cfg64.MeshW, cfg64.MeshH = 8, 8
		b64, t64 := run(cfg64, p, 120)
		fmt.Printf("%-6s %15.1f%% %15.1f%%\n", name,
			100*(b16-t16)/b16, 100*(b64-t64)/b64)
	}

	// Storage scalability (Section 3.6): the in-network tree entry stays
	// 28 bits regardless of system size; full-map directory entries grow
	// with the node count.
	fmt.Println("\nper-node coherence storage at 4K entries:")
	for _, n := range []int{16, 64, 256} {
		dirEntry := 2 + n + 1 // busy/req bits + full sharer map + modified
		treeEntry := 28
		fmt.Printf("  %3d nodes: tree %6d bits, full-map directory %6d bits\n",
			n, 4096*treeEntry, 4096*dirEntry)
	}
}
