// Scalability: the paper's central scalability claim (Section 3.4) is that
// in-transit optimization keeps paying off as the chip grows. This example
// runs the same benchmarks on a 4x4 and an 8x8 mesh and reports how the
// write-latency advantage of in-network coherence evolves, along with the
// coherence storage comparison of Section 3.6 (full-map directory bits grow
// with the node count; virtual tree bits do not).
//
// All sixteen simulations (4 benchmarks x 2 mesh sizes x 2 protocols) run
// as one batch on the internal/exec worker pool.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	"innetcc/internal/exec"
	"innetcc/internal/experiments"
	"innetcc/internal/network"
	"innetcc/internal/protocol"
	"innetcc/internal/trace"
)

func main() {
	benches := []string{"fft", "bar", "wsp", "ocn"}
	opt := experiments.Options{Seed: 7}.WithDefaults() // default access counts, this example's seed
	var jobs []exec.Job
	for _, name := range benches {
		p, err := trace.ProfileByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg16 := protocol.DefaultConfig()
		cfg64 := protocol.DefaultConfig()
		cfg64.Topology = network.MeshSpec(8, 8)
		for _, j := range []exec.Job{
			{Key: name + "/16/dir", Engine: protocol.KindDirectory, Config: cfg16, Profile: p, Accesses: opt.AccessesPerNode, SuiteSeed: opt.Seed},
			{Key: name + "/16/tree", Engine: protocol.KindTree, Config: cfg16, Profile: p, Accesses: opt.AccessesPerNode, SuiteSeed: opt.Seed},
			{Key: name + "/64/dir", Engine: protocol.KindDirectory, Config: cfg64, Profile: p, Accesses: opt.AccessesPerNode64, SuiteSeed: opt.Seed},
			{Key: name + "/64/tree", Engine: protocol.KindTree, Config: cfg64, Profile: p, Accesses: opt.AccessesPerNode64, SuiteSeed: opt.Seed},
		} {
			jobs = append(jobs, j)
		}
	}
	rs := (&exec.Pool{}).Run(jobs)

	fmt.Printf("%-6s %16s %16s\n", "bench", "4x4 write-red", "8x8 write-red")
	for i, name := range benches {
		b16, t16, b64, t64 := rs[4*i], rs[4*i+1], rs[4*i+2], rs[4*i+3]
		if b16.Failed() || t16.Failed() || b64.Failed() || t64.Failed() {
			fmt.Printf("%-6s FAILED\n", name)
			continue
		}
		red := func(base, tree exec.Result) float64 {
			return 100 * (base.Write.Mean() - tree.Write.Mean()) / base.Write.Mean()
		}
		fmt.Printf("%-6s %15.1f%% %15.1f%%\n", name, red(b16, t16), red(b64, t64))
	}

	// Storage scalability (Section 3.6): the in-network tree entry stays
	// 28 bits regardless of system size; full-map directory entries grow
	// with the node count.
	fmt.Println("\nper-node coherence storage at 4K entries:")
	for _, n := range []int{16, 64, 256} {
		dirEntry := 2 + n + 1 // busy/req bits + full sharer map + modified
		treeEntry := 28
		fmt.Printf("  %3d nodes: tree %6d bits, full-map directory %6d bits\n",
			n, 4096*treeEntry, 4096*dirEntry)
	}
}
