// Tracefile: the paper's methodology is trace-driven — memory access traces
// captured once and replayed against both protocols. This example shows the
// repository's trace file workflow: generate a synthetic benchmark trace,
// save it, reload it, and replay it under the in-network protocol with
// percentile latency reporting.
//
//	go run ./examples/tracefile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"innetcc/internal/protocol"
	"innetcc/internal/stats"
	"innetcc/internal/trace"

	// Registers the tree engine builder with protocol.Build.
	_ "innetcc/internal/treecc"
)

func main() {
	// 1. Generate and persist a trace (any tool can produce this format:
	//    "trace <name> <nodes>" then "<node> R|W <hex-line-addr>" lines).
	profile, err := trace.ProfileByName("ocn")
	if err != nil {
		log.Fatal(err)
	}
	orig := trace.Generate(profile, 16, 400, 2026)
	path := filepath.Join(os.TempDir(), "ocn.trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := orig.Write(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s: %d accesses, %d bytes\n", path, orig.TotalAccesses(), info.Size())

	// 2. Reload it, as a user with an external trace would.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay under the in-network protocol with percentile sampling.
	cfg := protocol.DefaultConfig()
	m, err := protocol.Build(protocol.Spec{
		Config: cfg, Trace: tr, Think: profile.Think, Engine: protocol.KindTree,
	})
	if err != nil {
		log.Fatal(err)
	}
	m.ReadSamples = &stats.Sampler{}
	m.WriteSamples = &stats.Sampler{}
	if err := m.Run(100_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nin-network replay of %q (%d cycles simulated)\n", tr.Name, m.Kernel.Now())
	fmt.Printf("%-8s %8s %8s %8s %8s\n", "", "mean", "p50", "p95", "p99")
	fmt.Printf("%-8s %7.1f %8.0f %8.0f %8.0f\n", "reads",
		m.Lat.Read.Mean(), m.ReadSamples.Percentile(50), m.ReadSamples.Percentile(95), m.ReadSamples.Percentile(99))
	fmt.Printf("%-8s %7.1f %8.0f %8.0f %8.0f\n", "writes",
		m.Lat.Write.Mean(), m.WriteSamples.Percentile(50), m.WriteSamples.Percentile(95), m.WriteSamples.Percentile(99))

	os.Remove(path)
}
