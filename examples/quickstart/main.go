// Quickstart: run one synthetic benchmark under both coherence protocols —
// the baseline MSI directory protocol and the paper's in-network
// virtual-tree protocol — on the nominal 4x4-mesh configuration (Table 2),
// and compare average memory access latencies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"innetcc/internal/protocol"
	"innetcc/internal/trace"

	// Blank imports register the engine builders protocol.Build
	// constructs from (database/sql driver style).
	_ "innetcc/internal/directory"
	_ "innetcc/internal/treecc"
)

func main() {
	// 1. Pick a benchmark profile (water-spatial: high sharing, high
	//    home-node skew) and generate its multi-threaded access trace.
	profile, err := trace.ProfileByName("wsp")
	if err != nil {
		log.Fatal(err)
	}
	tr := trace.Generate(profile, 16, 500, 1)
	fmt.Printf("benchmark %s: %d accesses across 16 nodes\n", profile.Name, tr.TotalAccesses())

	// 2. The nominal configuration of the paper's Table 2: 4x4 mesh,
	//    5-cycle baseline router pipeline, 4K-entry 4-way tree and
	//    directory caches, 2 MB L2 per node, 200-cycle main memory.
	cfg := protocol.DefaultConfig()

	// 3. Baseline: directory MSI. The network is a pure communication
	//    medium; every request is resolved at the home node's directory.
	base, err := protocol.Build(protocol.Spec{
		Config: cfg, Trace: tr, Think: profile.Think, Engine: protocol.KindDirectory,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := base.Run(100_000_000); err != nil {
		log.Fatal(err)
	}

	// 4. In-network: coherence directories live inside the routers as
	//    virtual trees; requests are steered toward nearby copies
	//    in-transit and writes tear trees down on their way to the home
	//    node.
	tree, err := protocol.Build(protocol.Spec{
		Config: cfg, Trace: tr, Think: profile.Think, Engine: protocol.KindTree,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.Run(100_000_000); err != nil {
		log.Fatal(err)
	}

	// 5. Compare. Every run is continuously verified for coherence and
	//    sequential consistency (Machine.Run fails on any violation).
	fmt.Printf("\n%-22s %12s %12s\n", "", "avg read", "avg write")
	fmt.Printf("%-22s %9.1f cy %9.1f cy\n", "directory MSI", base.Lat.Read.Mean(), base.Lat.Write.Mean())
	fmt.Printf("%-22s %9.1f cy %9.1f cy\n", "in-network trees", tree.Lat.Read.Mean(), tree.Lat.Write.Mean())
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "reduction",
		100*(base.Lat.Read.Mean()-tree.Lat.Read.Mean())/base.Lat.Read.Mean(),
		100*(base.Lat.Write.Mean()-tree.Lat.Write.Mean())/base.Lat.Write.Mean())

	fmt.Printf("\nin-network activity: %d reads served by tree sharers, %d teardowns completed, %d write bumps\n",
		tree.Counters.Get("tree.sharer_serves"),
		tree.Counters.Get("tree.teardowns_completed"),
		tree.Counters.Get("tree.write_bumps"))
}
