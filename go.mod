module innetcc

go 1.22
